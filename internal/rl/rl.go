// Package rl implements the deep deterministic policy gradient (DDPG)
// algorithm from the paper's §3.4 (Alg. 3): a model-free actor-critic
// framework with replay buffer, target networks with soft updates, and
// Ornstein-Uhlenbeck exploration noise. Network shapes follow the paper:
// two fully connected hidden layers of 40 ReLU units; the actor ends in
// Tanh (actions in [-1,1]^ActionDim), the critic is linear.
//
// Transfer learning (§3.4) is supported via TransferFrom: a specialized
// per-microservice agent warm-starts from the general agent's weights.
package rl

import (
	"errors"
	"fmt"
	"math/rand"

	"firm/internal/nn"
)

// Transition is one (s_t, a_t, r_t, s_{t+1}) tuple (§3.4 RL primer).
type Transition struct {
	S    []float64
	A    []float64
	R    float64
	S2   []float64
	Done bool
}

// ReplayBuffer is the finite-sized transition cache R of Alg. 3.
type ReplayBuffer struct {
	buf  []Transition
	cap  int
	pos  int
	full bool
}

// NewReplayBuffer creates a buffer with the given capacity.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic("rl: replay capacity must be positive")
	}
	return &ReplayBuffer{buf: make([]Transition, capacity), cap: capacity}
}

// Add inserts a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(t Transition) {
	b.buf[b.pos] = t
	b.pos = (b.pos + 1) % b.cap
	if b.pos == 0 {
		b.full = true
	}
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int {
	if b.full {
		return b.cap
	}
	return b.pos
}

// At returns the i-th oldest stored transition, i in [0, Len()).
func (b *ReplayBuffer) At(i int) Transition {
	if i < 0 || i >= b.Len() {
		panic("rl: replay index out of range")
	}
	if !b.full {
		return b.buf[i]
	}
	return b.buf[(b.pos+i)%b.cap]
}

// Sample draws exactly n transitions uniformly with replacement (n may
// exceed Len; duplicates are then guaranteed, which is the standard
// with-replacement semantics minibatch SGD assumes). n <= 0 or an empty
// buffer yields nil — never a panic — so callers batching freshly collected
// transitions can call it unconditionally.
func (b *ReplayBuffer) Sample(r *rand.Rand, n int) []Transition {
	if b.Len() == 0 || n <= 0 {
		return nil
	}
	return b.SampleInto(r, n, make([]Transition, 0, n))
}

// SampleInto is Sample appending into dst, so a per-step training loop can
// reuse one minibatch buffer across its entire run (TrainStep does). The
// random stream is consumed exactly as Sample consumes it.
func (b *ReplayBuffer) SampleInto(r *rand.Rand, n int, dst []Transition) []Transition {
	ln := b.Len()
	if ln == 0 || n <= 0 {
		return dst
	}
	for i := 0; i < n; i++ {
		dst = append(dst, b.buf[r.Intn(ln)])
	}
	return dst
}

// OUNoise is an Ornstein-Uhlenbeck process, the standard exploration noise
// for DDPG's continuous action space (Alg. 3 line 5's "random process N").
type OUNoise struct {
	Theta float64
	Sigma float64
	Mu    float64
	x     []float64
}

// NewOUNoise creates a process over dim action dimensions.
func NewOUNoise(dim int, theta, sigma float64) *OUNoise {
	return &OUNoise{Theta: theta, Sigma: sigma, x: make([]float64, dim)}
}

// Reset re-centres the process (start of an episode).
func (o *OUNoise) Reset() {
	for i := range o.x {
		o.x[i] = 0
	}
}

// Sample advances the process and returns the current noise vector. The
// returned slice aliases internal state; copy if retained.
func (o *OUNoise) Sample(r *rand.Rand) []float64 {
	for i := range o.x {
		o.x[i] += o.Theta*(o.Mu-o.x[i]) + o.Sigma*r.NormFloat64()
	}
	return o.x
}

// Config holds the DDPG hyperparameters; defaults mirror Table 4.
type Config struct {
	StateDim   int
	ActionDim  int
	Hidden     int     // hidden units per layer (paper: 40)
	ActorLR    float64 // paper: 3e-4
	CriticLR   float64 // paper: 3e-3
	Gamma      float64 // discount factor (paper: 0.9)
	Tau        float64 // target soft-update rate
	BatchSize  int     // minibatch size (paper: 64)
	BufferCap  int     // replay buffer size (paper: 1e5)
	NoiseTheta float64
	NoiseSigma float64
	// ActorDelay postpones actor (policy) updates for the first N train
	// steps so the critic stabilizes before it steers the policy — the
	// delayed-policy-update idea from TD3, which protects warm-started
	// actors from being destroyed by an untrained critic's gradients.
	ActorDelay uint64
	Seed       int64
}

// DefaultConfig returns Table 4's hyperparameters for the paper's
// state/action space (Table 3): 8 state inputs, 5 resource-limit actions.
func DefaultConfig() Config {
	return Config{
		StateDim: 8, ActionDim: 5, Hidden: 40,
		ActorLR: 3e-4, CriticLR: 3e-3,
		Gamma: 0.9, Tau: 0.01,
		BatchSize: 64, BufferCap: 100000,
		NoiseTheta: 0.15, NoiseSigma: 0.2,
		ActorDelay: 400,
		Seed:       1,
	}
}

// Agent is a DDPG learner.
type Agent struct {
	cfg     Config
	actor   *nn.Net
	critic  *nn.Net
	actorT  *nn.Net
	criticT *nn.Net
	optA    *nn.Adam
	optC    *nn.Adam
	buf     *ReplayBuffer
	noise   *OUNoise
	rng     *rand.Rand

	// Updates counts TrainStep invocations that performed a gradient step.
	Updates uint64

	// TrainStep scratch, reused across steps: the RL training loops
	// dominate campaign wall-clock, so the per-step minibatch, target,
	// input-concatenation, and gradient buffers must not be reallocated
	// tens of thousands of times per episode.
	batch   []Transition
	targets []float64
	in      []float64
	gact    []float64
	ginSeq  []float64
	gout    [1]float64

	// Batched-path scratch: row-major [batch×dim] matrices fed to the nn
	// batch path. Grown once, then reused for the life of the agent.
	s2B   []float64 // next states
	tinB  []float64 // target-critic inputs [s2 ‖ π'(s2)]
	inB   []float64 // critic inputs [s ‖ a] (reused for [s ‖ π(s)])
	sB    []float64 // states
	gyB   []float64 // per-row output gradients (critic head is 1-wide)
	gactB []float64 // per-row actor output gradients
}

// growF returns s resized to n floats, reallocating only when capacity is
// exceeded. Contents are unspecified; callers overwrite every element.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// gatherRow copies src into dst[off:off+want], panicking on a dimension
// mismatch exactly where the per-sample path's nn.Forward would have.
func gatherRow(dst []float64, off int, src []float64, want int, what string) {
	if len(src) != want {
		panic(fmt.Sprintf("rl: %s dim %d, want %d", what, len(src), want))
	}
	copy(dst[off:off+want], src)
}

// New creates a DDPG agent (Alg. 3 lines 1-3: random init, target copies,
// empty replay buffer).
func New(cfg Config) *Agent {
	if cfg.StateDim <= 0 || cfg.ActionDim <= 0 {
		panic("rl: invalid state/action dims")
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 40
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 100000
	}
	if cfg.Gamma <= 0 || cfg.Gamma > 1 {
		cfg.Gamma = 0.9
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	a := &Agent{
		cfg: cfg,
		actor: nn.New(r, []int{cfg.StateDim, cfg.Hidden, cfg.Hidden, cfg.ActionDim},
			[]nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh}),
		critic: nn.New(r, []int{cfg.StateDim + cfg.ActionDim, cfg.Hidden, cfg.Hidden, 1},
			[]nn.Activation{nn.ReLU, nn.ReLU, nn.Linear}),
		buf:   NewReplayBuffer(cfg.BufferCap),
		noise: NewOUNoise(cfg.ActionDim, cfg.NoiseTheta, cfg.NoiseSigma),
		rng:   r,
	}
	a.actorT = a.actor.Clone()
	a.criticT = a.critic.Clone()
	a.optA = nn.NewAdam(a.actor, cfg.ActorLR)
	a.optC = nn.NewAdam(a.critic, cfg.CriticLR)
	a.optA.SetGradClip(5)
	a.optC.SetGradClip(5)
	return a
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// Buffer exposes the replay buffer (tests, diagnostics).
func (a *Agent) Buffer() *ReplayBuffer { return a.buf }

// Act returns the deterministic policy action π(s) in [-1,1]^ActionDim.
// The returned slice is freshly allocated.
func (a *Agent) Act(state []float64) []float64 {
	out := a.actor.Forward(state)
	return append([]float64(nil), out...)
}

// ActExplore returns π(s) + N_t, clamped to [-1,1] (Alg. 3 line 8).
func (a *Agent) ActExplore(state []float64) []float64 {
	act := a.Act(state)
	noise := a.noise.Sample(a.rng)
	for i := range act {
		act[i] += noise[i]
		if act[i] > 1 {
			act[i] = 1
		}
		if act[i] < -1 {
			act[i] = -1
		}
	}
	return act
}

// ResetNoise re-centres exploration noise (start of episode).
func (a *Agent) ResetNoise() { a.noise.Reset() }

// Reseed replaces the agent's private RNG and re-centres exploration noise.
// Rollout replicas (internal/rollout) call it at every episode boundary so
// an episode's exploration stream is a pure function of its episode seed —
// independent of which worker runs the episode or what it ran before.
func (a *Agent) Reseed(seed int64) {
	a.rng = rand.New(rand.NewSource(seed))
	a.noise.Reset()
}

// Observe stores a transition in the replay buffer (Alg. 3 line 10).
func (a *Agent) Observe(t Transition) { a.buf.Add(t) }

// Q evaluates the critic for a state-action pair.
func (a *Agent) Q(state, action []float64) float64 {
	in := make([]float64, 0, len(state)+len(action))
	in = append(in, state...)
	in = append(in, action...)
	return a.critic.Forward(in)[0]
}

// TrainStep performs one DDPG update (Alg. 3 lines 11-15): sample a
// minibatch, regress the critic toward the bootstrapped target, ascend the
// actor along dQ/da, then soft-update both target networks. It returns the
// minibatch critic loss and false when the buffer has too few samples.
//
// The minibatch runs through nn's matrix-at-a-time batch path. Results are
// bit-identical to TrainStepSequential, the retained per-sample reference:
// both consume the same RNG stream (one SampleInto draw) and accumulate
// every float sum in the same sample-major order.
func (a *Agent) TrainStep() (criticLoss float64, ok bool) {
	if a.buf.Len() < a.cfg.BatchSize {
		return 0, false
	}
	a.batch = a.buf.SampleInto(a.rng, a.cfg.BatchSize, a.batch[:0])
	batch := a.batch
	nb := len(batch)
	n := float64(nb)
	sd, ad := a.cfg.StateDim, a.cfg.ActionDim
	cd := sd + ad

	// Bootstrapped targets: y_i = r_i + gamma*Q'(s2_i, π'(s2_i)). The
	// forwards run for every row — terminal rows' values are computed but
	// unused, which cannot perturb results (forward passes read no
	// gradient state).
	a.targets = growF(a.targets, nb)
	a.s2B = growF(a.s2B, nb*sd)
	a.tinB = growF(a.tinB, nb*cd)
	for i, tr := range batch {
		gatherRow(a.s2B, i*sd, tr.S2, sd, "next state")
	}
	a2 := a.actorT.ForwardBatch(a.s2B, nb)
	for i, tr := range batch {
		gatherRow(a.tinB, i*cd, tr.S2, sd, "next state")
		copy(a.tinB[i*cd+sd:i*cd+cd], a2[i*ad:i*ad+ad])
	}
	q2 := a.criticT.ForwardBatch(a.tinB, nb)
	for i, tr := range batch {
		y := tr.R
		if !tr.Done {
			y += a.cfg.Gamma * q2[i]
		}
		a.targets[i] = y
	}

	// Critic update: minimize (y_i - Q(s_i, a_i))^2.
	a.inB = growF(a.inB, nb*cd)
	a.gyB = growF(a.gyB, nb)
	for i, tr := range batch {
		gatherRow(a.inB, i*cd, tr.S, sd, "state")
		gatherRow(a.inB, i*cd+sd, tr.A, ad, "action")
	}
	a.critic.ZeroGrad()
	q := a.critic.ForwardBatch(a.inB, nb)
	for i := 0; i < nb; i++ {
		d := q[i] - a.targets[i]
		criticLoss += d * d / n
		a.gyB[i] = 2 * d / n
	}
	a.critic.BackwardBatchParams(a.gyB, nb)
	a.optC.Step()

	// Actor update: maximize Q(s, π(s)) → gradient ascent via chain rule
	// through a frozen critic (its grads are discarded after extraction).
	// Policy updates are delayed until the critic has seen enough batches.
	if a.Updates < a.cfg.ActorDelay {
		a.Updates++
		if err := a.criticT.SoftUpdate(a.critic, a.cfg.Tau); err != nil {
			panic(err)
		}
		return criticLoss, true
	}
	a.sB = growF(a.sB, nb*sd)
	a.gactB = growF(a.gactB, nb*ad)
	for i, tr := range batch {
		gatherRow(a.sB, i*sd, tr.S, sd, "state")
	}
	acts := a.actor.ForwardBatch(a.sB, nb)
	for i := 0; i < nb; i++ {
		copy(a.inB[i*cd:i*cd+sd], a.sB[i*sd:i*sd+sd])
		copy(a.inB[i*cd+sd:i*cd+cd], acts[i*ad:i*ad+ad])
	}
	a.critic.ForwardBatch(a.inB, nb)
	for i := 0; i < nb; i++ {
		a.gyB[i] = 1
	}
	// InputGrad leaves the critic's parameter gradients untouched, so the
	// frozen-critic extraction needs no ZeroGrad bracketing at all.
	gin := a.critic.BackwardBatchInputGrad(a.gyB, nb) // dQ/d[s‖a] per row
	for b := 0; b < nb; b++ {
		dqda := gin[b*cd+sd : b*cd+cd]
		for j, g := range dqda {
			a.gactB[b*ad+j] = -g / n // minimize -Q
		}
	}
	a.actor.ZeroGrad()
	a.actor.BackwardBatchParams(a.gactB, nb)
	a.optA.Step()

	// Soft target updates.
	if err := a.actorT.SoftUpdate(a.actor, a.cfg.Tau); err != nil {
		panic(err)
	}
	if err := a.criticT.SoftUpdate(a.critic, a.cfg.Tau); err != nil {
		panic(err)
	}
	a.Updates++
	return criticLoss, true
}

// TrainStepSequential is the pre-batching per-sample reference update,
// retained verbatim so equivalence tests (and the rl-train-step-seq
// benchmark) can pin the batched path against it bit for bit. It consumes
// the identical RNG stream as TrainStep and must produce identical weights.
func (a *Agent) TrainStepSequential() (criticLoss float64, ok bool) {
	if a.buf.Len() < a.cfg.BatchSize {
		return 0, false
	}
	a.batch = a.buf.SampleInto(a.rng, a.cfg.BatchSize, a.batch[:0])
	batch := a.batch
	n := float64(len(batch))

	// Critic update: minimize (y_i - Q(s_i, a_i))^2.
	if cap(a.targets) < len(batch) {
		a.targets = make([]float64, len(batch))
	}
	targets := a.targets[:len(batch)]
	for i, tr := range batch {
		y := tr.R
		if !tr.Done {
			a2 := a.actorT.Forward(tr.S2)
			a.in = append(a.in[:0], tr.S2...)
			a.in = append(a.in, a2...)
			y += a.cfg.Gamma * a.criticT.Forward(a.in)[0]
		}
		targets[i] = y
	}
	a.critic.ZeroGrad()
	for i, tr := range batch {
		a.in = append(a.in[:0], tr.S...)
		a.in = append(a.in, tr.A...)
		q := a.critic.Forward(a.in)[0]
		d := q - targets[i]
		criticLoss += d * d / n
		a.gout[0] = 2 * d / n
		a.critic.Backward(a.gout[:])
	}
	a.optC.Step()

	// Actor update: maximize Q(s, π(s)) → gradient ascent via chain rule
	// through a frozen critic (its grads are discarded after extraction).
	// Policy updates are delayed until the critic has seen enough batches.
	if a.Updates < a.cfg.ActorDelay {
		a.Updates++
		if err := a.criticT.SoftUpdate(a.critic, a.cfg.Tau); err != nil {
			panic(err)
		}
		return criticLoss, true
	}
	a.actor.ZeroGrad()
	for _, tr := range batch {
		act := a.actor.Forward(tr.S)
		a.in = append(a.in[:0], tr.S...)
		a.in = append(a.in, act...)
		a.critic.ZeroGrad()
		a.critic.Forward(a.in)
		a.gout[0] = 1
		gin := a.critic.BackwardInto(a.gout[:], a.ginSeq)
		a.ginSeq = gin
		dqda := gin[len(tr.S):]
		if cap(a.gact) < len(dqda) {
			a.gact = make([]float64, len(dqda))
		}
		gact := a.gact[:len(dqda)]
		for i := range dqda {
			gact[i] = -dqda[i] / n // minimize -Q
		}
		a.actor.Backward(gact)
	}
	a.critic.ZeroGrad() // drop contamination from dQ/da extraction
	a.optA.Step()

	// Soft target updates.
	if err := a.actorT.SoftUpdate(a.actor, a.cfg.Tau); err != nil {
		panic(err)
	}
	if err := a.criticT.SoftUpdate(a.critic, a.cfg.Tau); err != nil {
		panic(err)
	}
	a.Updates++
	return criticLoss, true
}

// PretrainActor behaviour-clones a demonstration policy: supervised MSE
// regression of π(s) onto demonstrated actions. The paper explores from
// scratch over thousands of episodes; a reproduction running orders of
// magnitude fewer episodes seeds the actor this way and lets DDPG refine
// it online. The target actor is synchronized afterwards.
func (a *Agent) PretrainActor(states, actions [][]float64, epochs int, lr float64) error {
	if len(states) != len(actions) || len(states) == 0 {
		return errors.New("rl: bad demonstration set")
	}
	opt := nn.NewAdam(a.actor, lr)
	idx := make([]int, len(states))
	for i := range idx {
		idx[i] = i
	}
	n := float64(len(states))
	// Chunk the shuffled demonstration set through the nn batch path. The
	// global sample order is the shuffled order either way and gradients
	// accumulate across chunks without zeroing, so each epoch's accumulated
	// gradient — and therefore the trained weights — is bit-identical to
	// the per-sample loop this replaces.
	const chunk = 64
	in, out := a.actor.InputDim(), a.actor.OutputDim()
	xb := make([]float64, chunk*in)
	gy := make([]float64, chunk*out)
	for e := 0; e < epochs; e++ {
		a.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		a.actor.ZeroGrad()
		for off := 0; off < len(idx); off += chunk {
			m := len(idx) - off
			if m > chunk {
				m = chunk
			}
			for k := 0; k < m; k++ {
				gatherRow(xb, k*in, states[idx[off+k]], in, "demo state")
			}
			outB := a.actor.ForwardBatch(xb[:m*in], m)
			for k := 0; k < m; k++ {
				act := actions[idx[off+k]]
				for j := 0; j < out; j++ {
					gy[k*out+j] = 2 * (outB[k*out+j] - act[j]) / n
				}
			}
			a.actor.BackwardBatchParams(gy[:m*out], m)
		}
		opt.Step()
	}
	return a.actorT.CopyFrom(a.actor)
}

// TransferFrom warm-starts this agent from src's learned networks: the
// transfer-learning path of §3.4, where a specialized per-microservice
// agent inherits the general agent's parameters and fine-tunes.
func (a *Agent) TransferFrom(src *Agent) error {
	if a.cfg.StateDim != src.cfg.StateDim || a.cfg.ActionDim != src.cfg.ActionDim {
		return errors.New("rl: transfer requires matching state/action dims")
	}
	if err := a.actor.CopyFrom(src.actor); err != nil {
		return err
	}
	if err := a.critic.CopyFrom(src.critic); err != nil {
		return err
	}
	if err := a.actorT.CopyFrom(src.actorT); err != nil {
		return err
	}
	return a.criticT.CopyFrom(src.criticT)
}

// Snapshot captures the current actor/critic weights (checkpointing for
// Fig. 11(b)'s per-checkpoint mitigation evaluation).
type Snapshot struct {
	Actor  []byte
	Critic []byte
}

// Save serializes the learned networks.
func (a *Agent) Save() (Snapshot, error) {
	act, err := a.actor.Marshal()
	if err != nil {
		return Snapshot{}, err
	}
	cr, err := a.critic.Marshal()
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{Actor: act, Critic: cr}, nil
}

// Load restores networks from a snapshot (targets are hard-copied).
func (a *Agent) Load(s Snapshot) error {
	actor, err := nn.Unmarshal(s.Actor)
	if err != nil {
		return err
	}
	critic, err := nn.Unmarshal(s.Critic)
	if err != nil {
		return err
	}
	if err := a.actor.CopyFrom(actor); err != nil {
		return err
	}
	if err := a.critic.CopyFrom(critic); err != nil {
		return err
	}
	if err := a.actorT.CopyFrom(actor); err != nil {
		return err
	}
	return a.criticT.CopyFrom(critic)
}
