package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestReplayBuffer(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Len() != 0 {
		t.Fatal("empty buffer")
	}
	for i := 0; i < 5; i++ {
		b.Add(Transition{R: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3 (capacity)", b.Len())
	}
	// Oldest evicted: rewards 2,3,4 remain.
	r := rand.New(rand.NewSource(1))
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		for _, tr := range b.Sample(r, 4) {
			seen[tr.R] = true
		}
	}
	for _, old := range []float64{0, 1} {
		if seen[old] {
			t.Fatalf("evicted transition %v sampled", old)
		}
	}
	for _, cur := range []float64{2, 3, 4} {
		if !seen[cur] {
			t.Fatalf("live transition %v never sampled", cur)
		}
	}
	if NewReplayBuffer(1).Sample(r, 3) != nil {
		t.Fatal("empty sample must be nil")
	}
}

func TestReplayBufferPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewReplayBuffer(0)
}

func TestOUNoiseMeanReverting(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	o := NewOUNoise(1, 0.15, 0.2)
	var sum, n float64
	for i := 0; i < 50000; i++ {
		sum += o.Sample(r)[0]
		n++
	}
	if mean := sum / n; math.Abs(mean) > 0.15 {
		t.Fatalf("OU mean %v should revert toward 0", mean)
	}
	o.Reset()
	// After reset the state starts at 0 again.
	first := o.Sample(r)[0]
	if math.Abs(first) > 1.0 {
		t.Fatalf("post-reset sample %v too large", first)
	}
}

func TestActShapesAndRange(t *testing.T) {
	a := New(DefaultConfig())
	s := make([]float64, 8)
	act := a.Act(s)
	if len(act) != 5 {
		t.Fatalf("action dim %d", len(act))
	}
	for _, v := range act {
		if v < -1 || v > 1 {
			t.Fatalf("action %v outside tanh range", v)
		}
	}
	for i := 0; i < 100; i++ {
		for _, v := range a.ActExplore(s) {
			if v < -1 || v > 1 {
				t.Fatalf("explored action %v outside clamp", v)
			}
		}
	}
}

func TestTrainStepRequiresBatch(t *testing.T) {
	a := New(DefaultConfig())
	if _, ok := a.TrainStep(); ok {
		t.Fatal("TrainStep must refuse with an empty buffer")
	}
}

// A one-step continuous control task: state s ∈ [-1,1]^2, optimal action
// a* = (s0, -s1, 0, ...). Reward = 1 - mean squared action error. DDPG must
// drive average reward close to optimum.
func TestDDPGLearnsOneStepControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StateDim = 2
	cfg.ActionDim = 2
	cfg.Seed = 3
	a := New(cfg)
	r := rand.New(rand.NewSource(4))

	reward := func(s, act []float64) float64 {
		d0 := act[0] - s[0]
		d1 := act[1] + s[1]
		return 1 - (d0*d0+d1*d1)/2
	}
	evalReward := func() float64 {
		var sum float64
		const n = 200
		rr := rand.New(rand.NewSource(99))
		for i := 0; i < n; i++ {
			s := []float64{rr.Float64()*2 - 1, rr.Float64()*2 - 1}
			sum += reward(s, a.Act(s))
		}
		return sum / n
	}

	before := evalReward()
	for step := 0; step < 4000; step++ {
		s := []float64{r.Float64()*2 - 1, r.Float64()*2 - 1}
		act := a.ActExplore(s)
		a.Observe(Transition{S: s, A: act, R: reward(s, act), S2: s, Done: true})
		a.TrainStep()
	}
	after := evalReward()
	if after < 0.9 {
		t.Fatalf("DDPG failed to learn: reward %v -> %v", before, after)
	}
	if a.Updates == 0 {
		t.Fatal("no training updates recorded")
	}
}

// Multi-step task: agent must learn that actions have delayed consequences.
// State is a scalar position; action nudges it; reward peaks at the origin.
func TestDDPGLearnsMultiStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StateDim = 1
	cfg.ActionDim = 1
	cfg.Seed = 5
	cfg.Gamma = 0.9
	a := New(cfg)
	r := rand.New(rand.NewSource(6))

	episode := func(explore bool) float64 {
		pos := r.Float64()*2 - 1
		var total float64
		a.ResetNoise()
		for step := 0; step < 10; step++ {
			s := []float64{pos}
			var act []float64
			if explore {
				act = a.ActExplore(s)
			} else {
				act = a.Act(s)
			}
			pos += 0.5 * act[0]
			if pos > 2 {
				pos = 2
			}
			if pos < -2 {
				pos = -2
			}
			rew := 1 - pos*pos
			total += rew
			if explore {
				a.Observe(Transition{S: s, A: act, R: rew, S2: []float64{pos}, Done: step == 9})
				a.TrainStep()
			}
		}
		return total
	}

	for ep := 0; ep < 300; ep++ {
		episode(true)
	}
	var avg float64
	for ep := 0; ep < 30; ep++ {
		avg += episode(false)
	}
	avg /= 30
	if avg < 7.5 { // max 10; random policy scores ~5
		t.Fatalf("multi-step return %v too low", avg)
	}
}

func TestTransferFrom(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 7
	src := New(cfg)
	cfg.Seed = 8
	dst := New(cfg)
	s := make([]float64, 8)
	for i := range s {
		s[i] = 0.3
	}
	if same(src.Act(s), dst.Act(s)) {
		t.Fatal("different seeds should differ before transfer")
	}
	if err := dst.TransferFrom(src); err != nil {
		t.Fatal(err)
	}
	if !same(src.Act(s), dst.Act(s)) {
		t.Fatal("transfer must copy the policy")
	}
	bad := New(Config{StateDim: 3, ActionDim: 5, Seed: 1})
	if err := bad.TransferFrom(src); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 9
	a := New(cfg)
	snap, err := a.Save()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 10
	b := New(cfg)
	s := make([]float64, 8)
	for i := range s {
		s[i] = -0.2
	}
	if same(a.Act(s), b.Act(s)) {
		t.Fatal("sanity: different agents")
	}
	if err := b.Load(snap); err != nil {
		t.Fatal(err)
	}
	if !same(a.Act(s), b.Act(s)) {
		t.Fatal("Load must restore the policy")
	}
	if err := b.Load(Snapshot{Actor: []byte("x"), Critic: snap.Critic}); err == nil {
		t.Fatal("corrupt snapshot must error")
	}
}

func TestQEvaluation(t *testing.T) {
	a := New(DefaultConfig())
	s := make([]float64, 8)
	act := make([]float64, 5)
	q1 := a.Q(s, act)
	q2 := a.Q(s, act)
	if q1 != q2 {
		t.Fatal("Q must be deterministic")
	}
	if math.IsNaN(q1) || math.IsInf(q1, 0) {
		t.Fatalf("Q = %v", q1)
	}
}

func TestDeterministicTraining(t *testing.T) {
	run := func() []float64 {
		cfg := DefaultConfig()
		cfg.StateDim = 2
		cfg.ActionDim = 1
		cfg.Seed = 11
		a := New(cfg)
		r := rand.New(rand.NewSource(12))
		for i := 0; i < 500; i++ {
			s := []float64{r.Float64(), r.Float64()}
			act := a.ActExplore(s)
			a.Observe(Transition{S: s, A: act, R: -act[0] * act[0], S2: s, Done: true})
			a.TrainStep()
		}
		return a.Act([]float64{0.5, 0.5})
	}
	if !same(run(), run()) {
		t.Fatal("training must be deterministic under fixed seeds")
	}
}

func TestConfigDefaultsMatchTable4(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Gamma != 0.9 {
		t.Fatalf("discount %v, Table 4 says 0.9", cfg.Gamma)
	}
	if cfg.ActorLR != 3e-4 || cfg.CriticLR != 3e-3 {
		t.Fatalf("lr %v/%v, Table 4 says 3e-4/3e-3", cfg.ActorLR, cfg.CriticLR)
	}
	if cfg.BufferCap != 100000 {
		t.Fatalf("buffer %d, Table 4 says 1e5", cfg.BufferCap)
	}
	if cfg.BatchSize != 64 {
		t.Fatalf("batch %d, Table 4 says 64", cfg.BatchSize)
	}
	if cfg.StateDim != 8 || cfg.ActionDim != 5 || cfg.Hidden != 40 {
		t.Fatal("network shape must match §3.4 (8 inputs, 5 outputs, 40 hidden)")
	}
}

func TestReplayBufferWraparoundOrder(t *testing.T) {
	b := NewReplayBuffer(4)
	for i := 0; i < 3; i++ {
		b.Add(Transition{R: float64(i)})
	}
	// Not yet wrapped: At indexes from the first insertion.
	for i := 0; i < 3; i++ {
		if b.At(i).R != float64(i) {
			t.Fatalf("At(%d) = %v before wrap", i, b.At(i).R)
		}
	}
	for i := 3; i < 10; i++ {
		b.Add(Transition{R: float64(i)})
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d at capacity", b.Len())
	}
	// 10 insertions into cap 4: oldest six evicted in insertion order,
	// survivors are 6,7,8,9 oldest-first.
	for i := 0; i < 4; i++ {
		if got, want := b.At(i).R, float64(6+i); got != want {
			t.Fatalf("At(%d) = %v, want %v (eviction must be FIFO)", i, got, want)
		}
	}
}

func TestReplayBufferAtPanicsOutOfRange(t *testing.T) {
	b := NewReplayBuffer(2)
	b.Add(Transition{})
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) must panic with Len 1", i)
				}
			}()
			b.At(i)
		}()
	}
}

func TestReplayBufferSampleBoundaries(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	b := NewReplayBuffer(8)
	// Empty buffer: nil for any n.
	if b.Sample(r, 5) != nil {
		t.Fatal("empty buffer must sample nil")
	}
	b.Add(Transition{R: 1})
	b.Add(Transition{R: 2})
	// n <= 0: nil, never a panic (a negative make() used to panic here).
	if b.Sample(r, 0) != nil || b.Sample(r, -3) != nil {
		t.Fatal("n <= 0 must sample nil")
	}
	// n > Len: exactly n draws with replacement, all from live contents.
	out := b.Sample(r, 50)
	if len(out) != 50 {
		t.Fatalf("want 50 with-replacement draws, got %d", len(out))
	}
	for _, tr := range out {
		if tr.R != 1 && tr.R != 2 {
			t.Fatalf("sampled transition %v not in buffer", tr.R)
		}
	}
}

func TestReplayBufferSampleDeterministic(t *testing.T) {
	b := NewReplayBuffer(16)
	for i := 0; i < 16; i++ {
		b.Add(Transition{R: float64(i)})
	}
	draw := func() []float64 {
		r := rand.New(rand.NewSource(21))
		var out []float64
		for _, tr := range b.Sample(r, 40) {
			out = append(out, tr.R)
		}
		return out
	}
	if !same(draw(), draw()) {
		t.Fatal("Sample must be a pure function of the RNG state")
	}
}

func TestOUNoiseResetRestartsProcess(t *testing.T) {
	o := NewOUNoise(3, 0.15, 0.2)
	first := append([]float64(nil), o.Sample(rand.New(rand.NewSource(31)))...)
	for i := 0; i < 100; i++ {
		o.Sample(rand.New(rand.NewSource(int64(i))))
	}
	o.Reset()
	// After Reset the process re-centres at zero, so with the same RNG the
	// first sample repeats exactly.
	if !same(first, o.Sample(rand.New(rand.NewSource(31)))) {
		t.Fatal("Reset must re-centre the process state at 0")
	}
}

func TestReseedMakesExplorationReproducible(t *testing.T) {
	a := New(DefaultConfig())
	s := make([]float64, 8)
	for i := range s {
		s[i] = 0.1 * float64(i)
	}
	seq := func() [][]float64 {
		a.Reseed(77)
		var out [][]float64
		for i := 0; i < 5; i++ {
			out = append(out, a.ActExplore(s))
		}
		return out
	}
	s1 := seq()
	// Perturb the RNG and noise state, then reseed again.
	for i := 0; i < 50; i++ {
		a.ActExplore(s)
	}
	s2 := seq()
	for i := range s1 {
		if !same(s1[i], s2[i]) {
			t.Fatalf("step %d: exploration not a pure function of the reseed", i)
		}
	}
}

// trainEquivalent drives both agents through an identical observe/train
// protocol and reports whether their policies stay bit-equal — the property
// rollout replicas rely on: snapshot → load (or transfer) must reproduce
// actor, critic, AND target networks, or subsequent training diverges.
func trainEquivalent(t *testing.T, a, b *Agent) {
	t.Helper()
	a.Reseed(55)
	b.Reseed(55)
	r := rand.New(rand.NewSource(56))
	for i := 0; i < 200; i++ {
		s := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64(),
			r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		tr := Transition{S: s, A: a.Act(s), R: r.Float64(), S2: s, Done: i%10 == 9}
		a.Observe(tr)
		b.Observe(tr)
		la, oka := a.TrainStep()
		lb, okb := b.TrainStep()
		if oka != okb || la != lb {
			t.Fatalf("step %d: training diverged (loss %v vs %v)", i, la, lb)
		}
	}
	probe := []float64{0.2, -0.4, 0.6, 0.1, -0.9, 0.3, 0.5, -0.1}
	if !same(a.Act(probe), b.Act(probe)) {
		t.Fatal("policies diverged after identical training")
	}
	if a.Q(probe, a.Act(probe)) != b.Q(probe, b.Act(probe)) {
		t.Fatal("critics diverged after identical training")
	}
}

func TestSnapshotMutateLoadRestoresBitEqual(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 41
	cfg.ActorDelay = 20 // let the mutation phase move the actor, not just the critic
	a := New(cfg)
	// Give the agent non-initial weights before snapshotting.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 150; i++ {
		s := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64(),
			r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		a.Observe(Transition{S: s, A: a.ActExplore(s), R: r.Float64(), S2: s, Done: true})
		a.TrainStep()
	}
	snap, err := a.Save()
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.7, -0.2, 0.4, 0.9, -0.5, 0.1, 0.3, -0.8}
	wantAct := a.Act(probe)
	wantQ := a.Q(probe, wantAct)

	// Mutate: keep training past the snapshot.
	for i := 0; i < 60; i++ {
		s := []float64{r.Float64(), 0, 0, 0, 0, 0, 0, 0}
		a.Observe(Transition{S: s, A: a.ActExplore(s), R: 1, S2: s, Done: true})
		a.TrainStep()
	}
	if same(wantAct, a.Act(probe)) {
		t.Fatal("sanity: mutation must move the policy")
	}
	if err := a.Load(snap); err != nil {
		t.Fatal(err)
	}
	if !same(wantAct, a.Act(probe)) {
		t.Fatal("Load must restore the actor bit-for-bit")
	}
	if got := a.Q(probe, wantAct); got != wantQ {
		t.Fatalf("Load must restore the critic bit-for-bit (%v != %v)", got, wantQ)
	}
	// Targets are hard-copied on Load: two fresh agents loaded from the same
	// snapshot (same empty buffer, same update counter) must evolve
	// identically under an identical protocol.
	cfg.Seed = 43
	b := New(cfg)
	if err := b.Load(snap); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 49
	c := New(cfg)
	if err := c.Load(snap); err != nil {
		t.Fatal(err)
	}
	trainEquivalent(t, b, c)
}

func TestTransferFromRoundTripTrainsEquivalently(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 44
	src := New(cfg)
	r := rand.New(rand.NewSource(45))
	for i := 0; i < 120; i++ {
		s := []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64(),
			r.Float64(), r.Float64(), r.Float64(), r.Float64()}
		src.Observe(Transition{S: s, A: src.ActExplore(s), R: r.Float64(), S2: s, Done: true})
		src.TrainStep()
	}
	cfg.Seed = 46
	dst := New(cfg)
	if err := dst.TransferFrom(src); err != nil {
		t.Fatal(err)
	}
	// TransferFrom copies all four networks (actor, critic, both targets):
	// two transferred agents must train in lockstep from here.
	cfg.Seed = 47
	ref := New(cfg)
	if err := ref.TransferFrom(src); err != nil {
		t.Fatal(err)
	}
	trainEquivalent(t, dst, ref)

	// A minimal-buffer acting replica still mirrors the policy exactly:
	// replay capacity must not leak into the weights.
	cfg.Seed = 48
	cfg.BufferCap = 1
	replica := New(cfg)
	if err := replica.TransferFrom(src); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3}
	if !same(replica.Act(probe), src.Act(probe)) {
		t.Fatal("replica policy must match source bit-for-bit")
	}
}

func same(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
