package perf

import (
	"testing"
)

// TestRegistry: names are unique, Find round-trips, unknown names error.
func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, bm := range Benchmarks() {
		if bm.Name == "" || bm.Desc == "" || bm.Fn == nil {
			t.Fatalf("incomplete registration %+v", bm)
		}
		if seen[bm.Name] {
			t.Fatalf("duplicate benchmark name %q", bm.Name)
		}
		seen[bm.Name] = true
		if got, err := Find(bm.Name); err != nil || got.Name != bm.Name {
			t.Fatalf("Find(%q) = %v, %v", bm.Name, got.Name, err)
		}
	}
	if _, err := Find("no-such-bench"); err == nil {
		t.Fatal("Find of unknown benchmark must error")
	}
	if _, err := Run([]string{"no-such-bench"}); err == nil {
		t.Fatal("Run of unknown benchmark must error")
	}
}

// TestCoreTickAllocFree is the headline invariant behind BENCH_*.json: the
// steady-state controller tick performs zero heap allocations.
func TestCoreTickAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed setup is seconds-long")
	}
	bed := newTickBed()
	bed.ctl.TickNow()
	if n := bed.ctl.Monitor().Len(); n < 50 {
		t.Fatalf("benchmark window holds %d traces; the measurement would be vacuous", n)
	}
	allocs := testing.AllocsPerRun(50, func() { bed.ctl.TickNow() })
	if allocs != 0 {
		t.Fatalf("steady-state tick allocs/op = %v, want 0", allocs)
	}
}
