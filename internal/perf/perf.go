// Package perf is firmbench's microbenchmark registry: deterministic
// benchmarks of the hot paths the campaign loop multiplies — the
// controller tick, the sliding tail-latency window, trace-window
// selection, telemetry sampling, the batched DDPG train step (with its
// retained per-sample reference), the incremental localization features,
// and a double-buffered rollout round. `firmbench -bench` runs them and
// records the results as a canonical BENCH_*.json (internal/report
// floats), which is how the repo's perf trajectory is tracked across PRs
// (`firmbench -bench-trend` tabulates it); `go test -bench` exposes the
// same functions as ordinary benchmarks (bench_test.go).
//
// Wall-clock (ns/op) varies by machine, but allocs/op, bytes/op, and the
// comparison counts are exact and deterministic — those are the regression
// metrics CI enforces (see the bench job's -bench-allocs thresholds).
package perf

import (
	"fmt"
	"testing"

	"firm/internal/core"
	"firm/internal/detect"
	"firm/internal/harness"
	"firm/internal/nn"
	"firm/internal/rl"
	"firm/internal/rollout"
	"firm/internal/scenario"
	"firm/internal/sim"
	"firm/internal/stats"
	"firm/internal/topology"
	"firm/internal/trace"
	"firm/internal/tracedb"
	"firm/internal/workload"
)

// Seed fixes every microbenchmark's simulated setup.
const Seed = 42

// Benchmark is one registered microbenchmark.
type Benchmark struct {
	Name string
	Desc string
	Fn   func(b *testing.B)
}

// Benchmarks returns the registry in its canonical (report) order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{"core-tick", "controller tick, incremental window (steady non-violated state)", CoreTick},
		{"core-tick-naive", "the replaced per-tick work: re-select window, batch-sort P99", CoreTickNaive},
		{"stats-window", "stats.Window insert+evict+P99 at W=1024", StatsWindow},
		{"tracedb-select", "tracedb.SelectAppend of a 2s window from a 200k-capacity ring", TracedbSelect},
		{"telemetry-add", "telemetry ring add at full retention", TelemetryAdd},
		{"nn-forward-batch", "one batched actor forward (batch 64, Table 4 shape)", NNForwardBatch},
		{"rl-train-step-batched", "one DDPG TrainStep on the matrix minibatch path (batch 64, Table 4 nets)", RLTrainStepBatched},
		{"rl-train-step-seq", "the replaced per-sample TrainStep, kept as the speedup reference", RLTrainStepSeq},
		{"detect-features", "incremental localizer rescore at steady state (the violated-tick path)", DetectFeatures},
		{"rollout-round-overlap", "one double-buffered rollout campaign: 2 actors + streaming learner", RolloutRoundOverlap},
		{"topology-generate", "procedural generation + validation of a 1,000-service spec", TopologyGenerate},
		{"topology-generate-10k", "procedural generation + validation of a 10,000-service spec (the sharded sweep's top cell)", TopologyGenerate10k},
		{"workload-arrivals", "thinned arrival sampling: 10ms of a 2,600 rps spiked-diurnal bound", WorkloadArrivals},
		{"shard-step", "one lookahead window of an 8-shard ring at steady state (mail routing + window barrier)", ShardStep},
		{"scenario-step", "one armed fault-scenario tick: recompute and apply every active site's pressure", ScenarioStep},
	}
}

// Find returns the named benchmark.
func Find(name string) (Benchmark, error) {
	for _, bm := range Benchmarks() {
		if bm.Name == name {
			return bm, nil
		}
	}
	return Benchmark{}, fmt.Errorf("perf: unknown benchmark %q", name)
}

// Result is one benchmark outcome in report-friendly form.
type Result struct {
	Name        string
	Iterations  int
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	Extra       map[string]float64
}

// Run executes the named benchmarks (all of them when names is empty) via
// testing.Benchmark and returns results in registry order.
func Run(names []string) ([]Result, error) {
	var selected []Benchmark
	if len(names) == 0 {
		selected = Benchmarks()
	} else {
		for _, n := range names {
			bm, err := Find(n)
			if err != nil {
				return nil, err
			}
			selected = append(selected, bm)
		}
	}
	out := make([]Result, 0, len(selected))
	for _, bm := range selected {
		r := testing.Benchmark(bm.Fn)
		res := Result{
			Name:        bm.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if len(r.Extra) > 0 {
			res.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Extra[k] = v
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// tickBed is the shared testbed for the tick benchmarks: the paper's
// hotel-reservation app under steady load, traces and telemetry populated,
// a FIRM controller wired but not started (the benchmark drives ticks
// itself, at a frozen clock, so every iteration measures the same
// steady-state window).
type tickBed struct {
	tb  *harness.Bench
	ctl *core.Controller
}

// newTickBed panics (with context) on setup failure rather than calling
// b.Fatal: firmbench -bench drives these functions through a bare
// testing.Benchmark, where b.Fatal crashes inside the testing package with
// an unreadable nil-pointer panic. A descriptive panic is the only clean
// failure channel outside the test framework.
func newTickBed() tickBed {
	tb, err := harness.New(harness.Options{
		Seed:         Seed,
		Spec:         topology.HotelReservation(),
		SLOMargin:    1.6,
		CalibrationN: 6,
	})
	if err != nil {
		panic(fmt.Sprintf("perf: tick testbed setup failed: %v", err))
	}
	tb.AttachWorkload(workload.Constant{RPS: 120})
	cfg := core.DefaultConfig()
	cfg.IdleReclaim = 0 // measure the detection path, not limit decay
	ctl := core.New(cfg, tb.App, tb.DB, tb.Col, tb.Meter, tb.Deploy,
		harness.NewExtractor(Seed), harness.SharedAgent(Seed))
	tb.Eng.RunFor(5 * sim.Second) // populate the ring and the window mirror
	return tickBed{tb: tb, ctl: ctl}
}

// CoreTick measures the per-tick control-loop cost on the incremental
// window: violation check, effective P99, reward bookkeeping. The extra
// cmp/op metric is the exact number of key comparisons per tick inside the
// order-statistics window; window is its size.
func CoreTick(b *testing.B) {
	bed := newTickBed()
	bed.ctl.TickNow() // reach steady state (first tick advances the window)
	mon := bed.ctl.Monitor()
	cmp0 := mon.Comparisons()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bed.ctl.TickNow()
	}
	b.StopTimer()
	b.ReportMetric(float64(mon.Comparisons()-cmp0)/float64(b.N), "cmp/op")
	b.ReportMetric(float64(mon.Len()), "window")
}

// CoreTickNaive measures exactly the per-tick work the incremental window
// replaced: re-select the trace window from the store, batch-check the SLO,
// and copy+sort the latencies for the P99 — the pre-optimization tick path,
// kept as the committed reference point for BENCH_*.json's allocs/op ratio.
func CoreTickNaive(b *testing.B) {
	bed := newTickBed()
	eng, db, slo := bed.tb.Eng, bed.tb.DB, bed.tb.App.SLO
	window := core.DefaultConfig().Window
	b.ReportAllocs()
	b.ResetTimer()
	var p99 float64
	var n int
	for i := 0; i < b.N; i++ {
		traces := db.Select(tracedb.Query{Since: eng.Now() - window, IncludeDrop: true})
		detect.Violated(traces, slo)
		var lats []float64
		for _, t := range traces {
			if !t.Dropped {
				lats = append(lats, t.Latency().Millis())
			}
		}
		p99 = stats.Percentile(lats, 99)
		n = len(traces)
	}
	b.StopTimer()
	_ = p99
	b.ReportMetric(float64(n), "window")
}

// StatsWindow measures one evict+insert+P99 cycle on a 1024-observation
// window — the steady-state cost a completing trace adds to the tick path.
func StatsWindow(b *testing.B) {
	w := stats.NewWindow(1024)
	r := sim.Stream(Seed, "perf-stats-window")
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = r.Float64() * 100
		w.Add(xs[i])
	}
	cmp0 := w.Comparisons()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := xs[i%len(xs)]
		w.Remove(x)
		w.Add(x)
		w.Percentile(99)
	}
	b.StopTimer()
	b.ReportMetric(float64(w.Comparisons()-cmp0)/float64(b.N), "cmp/op")
}

// TracedbSelect measures selecting a 2-second suffix window out of a full
// 200k-trace ring into a reused buffer — the violated-tick path.
func TracedbSelect(b *testing.B) {
	const cap = 200000
	db := tracedb.New(cap)
	traces := make([]trace.Trace, cap)
	for i := range traces {
		end := sim.Time(i) * sim.Millisecond
		traces[i] = trace.Trace{ID: trace.TraceID(i + 1), Start: end - 10*sim.Millisecond, End: end}
		db.Consume(&traces[i])
	}
	since := traces[cap-1].End - 2*sim.Second
	var buf []*trace.Trace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = db.SelectAppend(buf[:0], tracedb.Query{Since: since, IncludeDrop: true})
	}
	b.StopTimer()
	b.ReportMetric(float64(len(buf)), "selected")
}

// TelemetryAdd measures one full sampling pass (every container and node)
// with all retention rings at capacity — the steady state every collector
// interval pays. In-place ring overwrites make this allocation-free; the
// replaced slice-reslicing implementation allocated on every growth and
// pinned evicted prefixes.
func TelemetryAdd(b *testing.B) {
	bed := newTickBed()
	col := bed.tb.Col
	// The harness retains 2000 samples per series; fill every ring so each
	// measured pass overwrites in place.
	for i := 0; i < 2001; i++ {
		col.SampleNow()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col.SampleNow()
	}
}

// newTrainAgent builds the Table-4 agent with a filled replay buffer shared
// by the train-step benchmarks, so batched and sequential runs measure the
// same minibatch distribution.
func newTrainAgent() *rl.Agent {
	cfg := rl.DefaultConfig()
	cfg.Seed = Seed
	cfg.ActorDelay = 0
	ag := rl.New(cfg)
	r := sim.Stream(Seed, "perf-nn")
	mkvec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()
		}
		return v
	}
	for i := 0; i < 4*cfg.BatchSize; i++ {
		ag.Observe(rl.Transition{
			S: mkvec(cfg.StateDim), A: mkvec(cfg.ActionDim),
			R: r.Float64(), S2: mkvec(cfg.StateDim), Done: i%64 == 63,
		})
	}
	return ag
}

// RLTrainStepBatched measures one DDPG update on the matrix minibatch path:
// minibatch sample, batched critic regression, batched actor ascent, soft
// target updates (Table 4 network shapes, batch 64).
func RLTrainStepBatched(b *testing.B) {
	ag := newTrainAgent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ag.TrainStep(); !ok {
			// Impossible by construction (4×BatchSize observations above);
			// panic rather than b.Fatal — see newTickBed.
			panic("perf: TrainStep skipped: buffer underfilled")
		}
	}
}

// RLTrainStepSeq measures the per-sample TrainStep the batched path
// replaced. It is retained (rl.TrainStepSequential) precisely so this
// reference point stays honest: the batched/sequential ns/op ratio in
// BENCH_*.json is the minibatch optimization's receipt.
func RLTrainStepSeq(b *testing.B) {
	ag := newTrainAgent()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ag.TrainStepSequential(); !ok {
			panic("perf: TrainStepSequential skipped: buffer underfilled")
		}
	}
}

// NNForwardBatch measures one batched forward through the paper's actor
// shape (8→40→40→5) at batch 64 — the building block both TrainStep phases
// and PretrainActor lean on. Steady state is allocation-free: the batch
// scratch is owned by the net and only the caller's input matrix varies.
func NNForwardBatch(b *testing.B) {
	const batch = 64
	r := sim.Stream(Seed, "perf-nn-forward")
	net := nn.New(r, []int{8, 40, 40, 5}, []nn.Activation{nn.ReLU, nn.ReLU, nn.Tanh})
	xb := make([]float64, batch*8)
	for i := range xb {
		xb[i] = 2*r.Float64() - 1
	}
	net.ForwardBatch(xb, batch) // size the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatch(xb, batch)
	}
	b.StopTimer()
	b.ReportMetric(batch, "rows/op")
}

// DetectFeatures measures a violated tick's localization cost on the
// incremental path: with the window mirrored and folded, one op is
// Advance (no-op pops) plus a full Candidates rescore — per-instance
// Pearson over the pair rings, windowed percentiles, and SVM scoring.
// Steady state is allocation-free.
func DetectFeatures(b *testing.B) {
	bed := newTickBed()
	loc := detect.NewLocalizer(harness.NewExtractor(Seed), 256)
	bed.tb.DB.Observe(loc) // replays the populated ring
	since := bed.tb.Eng.Now() - core.DefaultConfig().Window
	loc.Advance(since)
	if len(loc.Candidates()) == 0 {
		panic("perf: detect-features testbed produced no candidates")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loc.Advance(since)
		loc.Candidates()
	}
	b.StopTimer()
	b.ReportMetric(float64(loc.Len()), "window")
}

// RolloutRoundOverlap measures one double-buffered rollout campaign — two
// rounds of four synthetic episodes on two actor replicas with the learner
// replaying completed episodes concurrently (rollout's default mode). It
// exercises snapshot publication, replica sync, streaming replay, and the
// batched TrainStep together: the end-to-end training inner loop.
func RolloutRoundOverlap(b *testing.B) {
	cfg := rl.DefaultConfig()
	cfg.Seed = Seed
	learner := core.SharedAgent{A: rl.New(cfg)}
	runEp := func(ep int, prov core.AgentProvider, sink core.TransitionSink) (float64, error) {
		r := sim.Stream(Seed, fmt.Sprintf("perf-rollout/ep%d", ep))
		state := make([]float64, cfg.StateDim)
		for i := range state {
			state[i] = r.Float64()
		}
		var total float64
		const steps = 24
		for step := 0; step < steps; step++ {
			ag := prov.AgentFor("svc")
			act := ag.ActExplore(state)
			var reward float64
			for _, a := range act {
				reward -= a * a
			}
			next := make([]float64, len(state))
			for i := range next {
				next[i] = 0.9*state[i] + 0.1*act[i%len(act)] + 0.02*r.Float64()
			}
			sink("svc", rl.Transition{S: state, A: act, R: reward, S2: next, Done: step == steps-1})
			total += reward
			state = next
		}
		return total, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rollout.Run(rollout.Options{
			Episodes: 8, Workers: 2, SyncEvery: 4,
			Seed: Seed, Key: fmt.Sprintf("perf-overlap/%d", i),
			Learner: learner, RunEpisode: runEp,
		}); err != nil {
			panic(fmt.Sprintf("perf: rollout campaign failed: %v", err))
		}
	}
	b.StopTimer()
	b.ReportMetric(8, "episodes/op")
}

// TopologyGenerate measures procedural generation (plus the hardened
// Validate it runs internally) of a 1,000-service spec — the per-cell
// setup cost of every web-scale sweep, and the large-graph target ROADMAP
// item 5's profiling flywheel asks for.
func TopologyGenerate(b *testing.B) {
	p := topology.Params{Services: 1000, Endpoints: 8, MaxFanout: 3, Depth: 6}
	var spec *topology.Spec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		spec, err = topology.Generate(p, Seed)
		if err != nil {
			panic(fmt.Sprintf("perf: generate failed: %v", err))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(spec.NumServices()), "services")
}

// WorkloadArrivals measures the thinned open-loop arrival path end to end:
// candidate proposals against a fast-varying composite bound (diurnal base
// with stochastic spikes), accept/reject thinning, and the accepted
// arrivals' submission into a minimal 2-service generated app. Each
// iteration advances the simulation 10ms (~26 proposals at the composite's
// 2,600 rps bound).
func WorkloadArrivals(b *testing.B) {
	spec, err := topology.Generate(topology.Params{Services: 2, Endpoints: 1, MaxFanout: 1, Depth: 2}, Seed)
	if err != nil {
		panic(fmt.Sprintf("perf: generate failed: %v", err))
	}
	tb, err := harness.New(harness.Options{Seed: Seed, Spec: spec})
	if err != nil {
		panic(fmt.Sprintf("perf: harness failed: %v", err))
	}
	spikes, err := workload.NewSpikes(
		workload.Diurnal{Base: 800, Amplitude: 400, Period: sim.Second},
		2, 50*sim.Millisecond, 10*sim.Millisecond, sim.Hour, Seed)
	if err != nil {
		panic(fmt.Sprintf("perf: spikes failed: %v", err))
	}
	gen := tb.AttachWorkload(workload.Sum{workload.Constant{RPS: 200}, spikes})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Eng.RunFor(10 * sim.Millisecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(gen.Submitted), "arrivals")
}

// TopologyGenerate10k measures generation + validation of the sharded
// sweep's top cell: a 10,000-service spec. Setup at this size is itself a
// scaling surface — a superlinear generator would dominate the cell's
// wall-clock before the first event fires.
func TopologyGenerate10k(b *testing.B) {
	p := topology.Params{Services: 10000, Endpoints: 12, MaxFanout: 2, Depth: 8}
	var spec *topology.Spec
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		spec, err = topology.Generate(p, Seed)
		if err != nil {
			panic(fmt.Sprintf("perf: generate failed: %v", err))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(spec.NumServices()), "services")
}

// ShardStep measures the sharded engine's hot loop at steady state: one op
// advances an 8-shard system by one lookahead window, carrying eight mail
// rings (every shard forwards one mail per window) plus one local
// self-rescheduling event per shard. It covers outbox collection, inbox
// heap routing, barrier bookkeeping, and the per-shard event loop — and
// must run at 0 allocs/op: event records come from the engine freelist and
// every mail buffer is reused, so a regression here means a per-event
// allocation crept into the window path. Workers are pinned to 1 (the
// inline path): goroutine handoff is measured by wall-clock elsewhere, and
// allocation accounting must not depend on scheduler timing.
func ShardStep(b *testing.B) {
	const nShards = 8
	const lookahead = 100 * sim.Microsecond
	se := sim.NewShardedEngine(Seed, nShards, lookahead)
	se.SetWorkers(1)
	// step[r][j] runs on shard j and forwards ring r to shard j+1. Keys are
	// the ring index: at any timestamp the eight in-flight mails carry
	// distinct rings, satisfying the key-uniqueness contract.
	step := make([][]func(), nShards)
	for r := 0; r < nShards; r++ {
		step[r] = make([]func(), nShards)
	}
	for r := 0; r < nShards; r++ {
		for j := 0; j < nShards; j++ {
			r, j := r, j
			next := (j + 1) % nShards
			step[r][j] = func() { se.Send(j, next, lookahead, uint64(r), step[r][next]) }
		}
	}
	local := make([]func(), nShards)
	for j := 0; j < nShards; j++ {
		j := j
		local[j] = func() { se.Shard(j).Schedule(37*sim.Microsecond, local[j]) }
	}
	for r := 0; r < nShards; r++ {
		se.Shard(r).Schedule(1, step[r][r])
		se.Shard(r).Schedule(1, local[r])
	}
	se.RunFor(50 * sim.Millisecond) // steady state: heaps, freelists, buffers all grown
	before := se.Steps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se.RunFor(lookahead)
	}
	b.StopTimer()
	b.ReportMetric(float64(se.Steps()-before)/float64(b.N), "events/op")
}

// ScenarioStep measures one fault-scenario player tick with every mode
// family active at once: per-site pressure recomputation (leak ramp,
// plateau saturation, metastable feedback) and the injected-load delta
// application. The campaign loop pays this every TickPeriod for each
// armed scenario, so it must run at 0 allocs/op — sites are preallocated
// at NewPlayer and advance only mutates them.
func ScenarioStep(b *testing.B) {
	spec, err := topology.Generate(topology.Params{Services: 12, Endpoints: 2, MaxFanout: 3, Depth: 3}, Seed)
	if err != nil {
		panic(fmt.Sprintf("perf: generate failed: %v", err))
	}
	tb, err := harness.New(harness.Options{Seed: Seed, Spec: spec})
	if err != nil {
		panic(fmt.Sprintf("perf: harness failed: %v", err))
	}
	const d = 30 * sim.Second
	sc := scenario.Overlay(
		scenario.Mode(scenario.MemLeak, 0.6, d),
		scenario.Mode(scenario.Plateau, 0.6, d),
		scenario.Mode(scenario.Metastable, 0.7, d),
		scenario.Mode(scenario.Cascade, 0.7, d).WithProb(0.5),
	)
	p, err := scenario.NewPlayer(scenario.Env{Eng: tb.Eng, Cluster: tb.Cluster, Spec: spec}, sc, Seed)
	if err != nil {
		panic(fmt.Sprintf("perf: player failed: %v", err))
	}
	p.Arm()
	tb.Eng.RunFor(d / 3) // mid-scenario: every atom active, sites populated
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.StepNow()
	}
}
